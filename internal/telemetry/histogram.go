// Package telemetry is the serving stack's zero-dependency observability
// layer: lock-cheap latency histograms and labeled counters rendered in
// Prometheus text exposition format, plus a lightweight per-request span
// API that follows a job from HTTP ingress down to individual CKKS
// primitive stages. Everything is stdlib-only and safe for concurrent use;
// the disabled paths (nil *Trace, no observer installed) are designed to
// cost a pointer test so instrumentation can stay compiled into the hot
// path.
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets is the count of finite histogram buckets. Bucket i covers
// durations in (2^(i-1) µs, 2^i µs]; bucket 0 is everything up to 1µs and
// one extra bucket catches overflow (le="+Inf"). The top finite bound is
// 2^35 µs ≈ 9.5 hours — far beyond any serving latency this stack emits.
const numBuckets = 36

// Histogram is a log2-bucketed latency histogram. Record is two atomic
// adds and touches no locks, so it can sit on the CKKS hot path; Merge and
// Snapshot read the same atomics, so concurrent recording never blocks a
// scrape. The zero value is ready to use, and all methods tolerate a nil
// receiver (they drop the sample or report empty) so call sites need no
// enabled-check.
type Histogram struct {
	counts [numBuckets + 1]atomic.Uint64 // counts[numBuckets] is the +Inf bucket
	sum    atomic.Int64                  // total nanoseconds recorded
}

// bucketIndex maps a duration to its bucket: the smallest i with
// d <= 2^i µs, or the overflow bucket.
func bucketIndex(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns <= 0 {
		return 0
	}
	us := uint64(ns+999) / 1000 // ceil to µs so d <= bucketBound(i) holds exactly
	if us <= 1 {
		return 0
	}
	i := bits.Len64(us - 1) // smallest i with 2^i >= us
	if i >= numBuckets {
		return numBuckets
	}
	return i
}

// bucketBound returns bucket i's inclusive upper bound in seconds.
func bucketBound(i int) float64 {
	return 1e-6 * float64(uint64(1)<<uint(i))
}

// Record adds one observation. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	h.counts[bucketIndex(d)].Add(1)
	if d > 0 {
		h.sum.Add(d.Nanoseconds())
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the total recorded time.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Merge folds o's observations into h. Both sides may be recorded into
// concurrently; the merge is per-bucket atomic (each bucket transfers
// exactly, though buckets are not snapshotted at one instant).
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := range o.counts {
		if n := o.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	if s := o.sum.Load(); s != 0 {
		h.sum.Add(s)
	}
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) in seconds,
// interpolating linearly inside the landing bucket. An empty histogram
// reports 0; samples in the overflow bucket report the top finite bound
// (the histogram cannot see past it).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	var snap [numBuckets + 1]uint64
	var total uint64
	for i := range h.counts {
		snap[i] = h.counts[i].Load()
		total += snap[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range snap {
		if c == 0 {
			continue
		}
		cum += c
		if float64(cum) >= rank {
			if i == numBuckets {
				return bucketBound(numBuckets - 1)
			}
			lower := 0.0
			if i > 0 {
				lower = bucketBound(i - 1)
			}
			upper := bucketBound(i)
			frac := (rank - float64(cum-c)) / float64(c)
			return lower + frac*(upper-lower)
		}
	}
	return bucketBound(numBuckets - 1) // unreachable: cum == total >= rank
}

// HistogramSnapshot is a point-in-time copy of a histogram's buckets, used
// by the exposition writer and by tests asserting merge consistency.
type HistogramSnapshot struct {
	Counts [numBuckets + 1]uint64 // per-bucket counts; last is +Inf
	Sum    time.Duration
	Count  uint64
}

// Snapshot copies the current bucket counts. Buckets are read atomically
// but not at a single instant; totals are exact once recording quiesces.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	s.Sum = time.Duration(h.sum.Load())
	return s
}
