package telemetry

import (
	"strings"
	"testing"
	"time"
)

// TestWriteTextGolden pins the exact Prometheus text exposition output for
// a registry exercising every metric kind — counters with and without
// labels, a scrape-time gauge, and a histogram with samples in three
// buckets. The format is a wire contract with external scrapers, so it is
// asserted byte-for-byte.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	reqs := r.NewCounterVec("henn_http_requests_total", "HTTP requests by route and status.", "route", "code")
	reqs.With("GET /v1/stats", "200").Add(3)
	reqs.With("POST /v1/sessions", "201").Inc()
	r.NewGaugeFunc("henn_workers", "Resolved worker budget.", func() float64 { return 4 })
	lat := r.NewHistogramVec("henn_unit_seconds", "Unit execution latency by model.", "model")
	h := lat.With("alpha@1")
	h.Record(500 * time.Nanosecond) // bucket 0: le 1e-06
	h.Record(3 * time.Microsecond)  // bucket 2: le 4e-06
	h.Record(3 * time.Microsecond)
	h.Record(time.Millisecond) // bucket 10: le 0.001024

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP henn_http_requests_total HTTP requests by route and status.
# TYPE henn_http_requests_total counter
henn_http_requests_total{route="GET /v1/stats",code="200"} 3
henn_http_requests_total{route="POST /v1/sessions",code="201"} 1
# HELP henn_unit_seconds Unit execution latency by model.
# TYPE henn_unit_seconds histogram
henn_unit_seconds_bucket{model="alpha@1",le="1e-06"} 1
henn_unit_seconds_bucket{model="alpha@1",le="4e-06"} 3
henn_unit_seconds_bucket{model="alpha@1",le="0.001024"} 4
henn_unit_seconds_bucket{model="alpha@1",le="+Inf"} 4
henn_unit_seconds_sum{model="alpha@1"} 0.0010065
henn_unit_seconds_count{model="alpha@1"} 4
# HELP henn_workers Resolved worker budget.
# TYPE henn_workers gauge
henn_workers 4
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestLabelEscaping: label values with quotes, backslashes and newlines
// must escape per the exposition format.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("c_total", "h", "l").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `c_total{l="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping failed:\n%s", b.String())
	}
}

// TestVecWithAndFind: With creates on first use and returns the same
// series thereafter; Find never creates.
func TestVecWithAndFind(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("x_total", "h", "k")
	if got := v.Find("missing"); got != nil {
		t.Fatal("Find must not create series")
	}
	c := v.With("a")
	c.Inc()
	if v.With("a") != c {
		t.Fatal("With must return the same series for equal labels")
	}
	if got := v.Find("a"); got != c {
		t.Fatal("Find must return the created series")
	}
	hv := r.NewHistogramVec("y_seconds", "h", "k")
	hh := hv.With("a")
	hh.Record(time.Millisecond)
	if hv.Find("a") != hh || hv.Find("b") != nil {
		t.Fatal("HistogramVec Find misbehaves")
	}
}

// TestDuplicateRegistrationPanics: metric names are a global contract per
// registry; silently shadowing one is a bug worth failing fast on.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r.NewCounter("dup_total", "h")
}

// TestCounterNil: nil counters swallow writes (disabled instrumentation).
func TestCounterNil(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
}
