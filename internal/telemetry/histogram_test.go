package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistogramEmpty: an empty histogram reports zero everywhere instead
// of NaN or a panic — stats surfaces render it before traffic arrives.
func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if got := h.Count(); got != 0 {
		t.Fatalf("Count = %d, want 0", got)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%g) on empty histogram = %g, want 0", q, got)
		}
	}
	if got := h.Sum(); got != 0 {
		t.Fatalf("Sum = %v, want 0", got)
	}
}

// TestHistogramNil: every method tolerates a nil receiver (the disabled
// state instrumented code relies on).
func TestHistogramNil(t *testing.T) {
	var h *Histogram
	h.Record(time.Millisecond)
	h.Merge(&Histogram{})
	(&Histogram{}).Merge(h)
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must read as empty")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil snapshot must be empty")
	}
}

// TestHistogramSingleSample: one observation pins every quantile inside
// its bucket, and the bucket bound brackets the sample.
func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	d := 3 * time.Millisecond
	h.Record(d)
	if got := h.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
	if got := h.Sum(); got != d {
		t.Fatalf("Sum = %v, want %v", got, d)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		// 3ms lands in the (2ms, 4.096ms] bucket; any interpolated point
		// must stay inside it.
		if got <= 2048e-6 || got > 4096e-6 {
			t.Fatalf("Quantile(%g) = %gs, outside the sample's bucket (2.048ms, 4.096ms]", q, got)
		}
	}
}

// TestHistogramBucketIndex pins the bucket edges: exact powers of two land
// on their own bound, one nanosecond past rolls into the next bucket.
func TestHistogramBucketIndex(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Second, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + time.Nanosecond, 1},
		{2 * time.Microsecond, 1},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},       // 1024µs bound is 2^10
		{time.Second, 20},            // ≤ 2^20 µs = 1.048576s
		{2 * time.Hour, 33},          // 7200s ≤ 2^33 µs ≈ 8590s
		{40 * time.Hour, numBuckets}, // past the top finite bound → overflow
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestHistogramOverflowBucket: samples beyond the top finite bound count
// toward Count and quantiles saturate at the top finite bound rather than
// inventing a value the histogram cannot resolve.
func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	huge := 100 * time.Hour
	h.Record(huge)
	h.Record(huge)
	if got := h.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	top := bucketBound(numBuckets - 1)
	if got := h.Quantile(0.99); got != top {
		t.Fatalf("Quantile(0.99) = %g, want top finite bound %g", got, top)
	}
	snap := h.Snapshot()
	if snap.Counts[numBuckets] != 2 {
		t.Fatalf("overflow bucket holds %d, want 2", snap.Counts[numBuckets])
	}
}

// TestHistogramQuantileOrdering: quantiles are monotone and bracket the
// recorded range on a spread of samples.
func TestHistogramQuantileOrdering(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	p50, p95, p99 := h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles not monotone: p50=%g p95=%g p99=%g", p50, p95, p99)
	}
	// Log-bucketed resolution: each estimate must be within its bucket's
	// 2x of the true value.
	if p50 < 0.25 || p50 > 1.1 {
		t.Fatalf("p50 = %g, want ~0.5 within bucket resolution", p50)
	}
	if p99 < 0.5 || p99 > 2.2 {
		t.Fatalf("p99 = %g, want ~0.99 within bucket resolution", p99)
	}
}

// TestHistogramConcurrentRecordAndMerge hammers two histograms from many
// goroutines while a third concurrently merges and scrapes them — under
// -race this proves Record/Merge/Snapshot need no external locking — then
// checks the merged totals are exactly the sum of what was recorded.
func TestHistogramConcurrentRecordAndMerge(t *testing.T) {
	var a, b Histogram
	const (
		writers = 8
		perG    = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				d := time.Duration(g*perG+i+1) * time.Microsecond
				if g%2 == 0 {
					a.Record(d)
				} else {
					b.Record(d)
				}
			}
		}(g)
	}
	// Concurrent scrapes and merges into throwaway targets while writes
	// are in flight: only the race detector's verdict matters here.
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var scratch Histogram
				scratch.Merge(&a)
				scratch.Merge(&b)
				_ = scratch.Quantile(0.99)
				_ = a.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(stop)
	scraper.Wait()

	// Quiesced: a final merge must be bit-exact against the two sources.
	var merged Histogram
	merged.Merge(&a)
	merged.Merge(&b)
	if got, want := merged.Count(), a.Count()+b.Count(); got != want {
		t.Fatalf("merged Count = %d, want %d", got, want)
	}
	if got, want := merged.Sum(), a.Sum()+b.Sum(); got != want {
		t.Fatalf("merged Sum = %v, want %v", got, want)
	}
	ms, as, bs := merged.Snapshot(), a.Snapshot(), b.Snapshot()
	for i := range ms.Counts {
		if ms.Counts[i] != as.Counts[i]+bs.Counts[i] {
			t.Fatalf("bucket %d: merged %d != %d + %d", i, ms.Counts[i], as.Counts[i], bs.Counts[i])
		}
	}
	if got, want := merged.Count(), uint64(writers*perG); got != want {
		t.Fatalf("total observations = %d, want %d", got, want)
	}
}

// TestBucketBoundsMonotone sanity-checks the bound table the exposition
// writer and quantile interpolation share.
func TestBucketBoundsMonotone(t *testing.T) {
	prev := math.Inf(-1)
	for i := 0; i < numBuckets; i++ {
		b := bucketBound(i)
		if b <= prev {
			t.Fatalf("bucketBound(%d) = %g not increasing past %g", i, b, prev)
		}
		prev = b
	}
	if got := bucketBound(0); got != 1e-6 {
		t.Fatalf("bucketBound(0) = %g, want 1e-6", got)
	}
}
