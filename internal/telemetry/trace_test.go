package telemetry

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestTraceNilSafe: the entire span/stage API no-ops on a nil trace — the
// disabled state every instrumented call site relies on.
func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Fatal("nil trace must have empty ID")
	}
	sp := tr.StartSpan("x")
	sp.SetAttr("k", "v")
	sp.End()
	tr.AddSpan("y", time.Now(), time.Now())
	if mark := tr.StageStart(); !mark.IsZero() {
		t.Fatal("nil StageStart must return the zero Time")
	}
	tr.StageEnd("stage", time.Time{})
	if snap := tr.Snapshot(); snap.ID != "" || len(snap.Spans) != 0 {
		t.Fatal("nil snapshot must be empty")
	}
	StartSpan(context.Background(), "z").End() // no trace in context
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context must carry no trace")
	}
}

// TestTraceSpansAndStages: spans land in completion order with attrs and
// offsets; stage totals aggregate across repeated calls.
func TestTraceSpansAndStages(t *testing.T) {
	tr := NewTrace("abc123")
	sp := tr.StartSpan("unit")
	sp.SetAttr("model", "alpha@1")
	time.Sleep(time.Millisecond)
	sp.End()

	for i := 0; i < 3; i++ {
		mark := tr.StageStart()
		time.Sleep(200 * time.Microsecond)
		tr.StageEnd("rotate", mark)
	}

	snap := tr.Snapshot()
	if snap.ID != "abc123" {
		t.Fatalf("ID = %q", snap.ID)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "unit" {
		t.Fatalf("spans = %+v", snap.Spans)
	}
	if snap.Spans[0].Attrs["model"] != "alpha@1" {
		t.Fatalf("attrs = %v", snap.Spans[0].Attrs)
	}
	if snap.Spans[0].DurUs < 1000 {
		t.Fatalf("unit span %dµs, want >= 1ms", snap.Spans[0].DurUs)
	}
	if len(snap.Stages) != 1 || snap.Stages[0].Name != "rotate" || snap.Stages[0].Count != 3 {
		t.Fatalf("stages = %+v", snap.Stages)
	}
	if snap.Stages[0].TotalUs < 600 {
		t.Fatalf("rotate total %dµs, want >= 3x200µs", snap.Stages[0].TotalUs)
	}
}

// TestTraceSpanCap: traces stop growing at the span cap and count drops.
func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("cap")
	now := time.Now()
	for i := 0; i < maxSpansPerTrace+10; i++ {
		tr.AddSpan("s", now, now)
	}
	snap := tr.Snapshot()
	if len(snap.Spans) != maxSpansPerTrace {
		t.Fatalf("spans = %d, want %d", len(snap.Spans), maxSpansPerTrace)
	}
	if snap.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", snap.Dropped)
	}
}

// TestTraceConcurrent: spans and stages recorded from many goroutines
// while another snapshots — the -race verdict is the assertion.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("conc")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.StartSpan(fmt.Sprintf("g%d", g))
				sp.SetAttr("i", "x")
				sp.End()
				mark := tr.StageStart()
				tr.StageEnd("stage", mark)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = tr.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	snap := tr.Snapshot()
	if snap.Stages[0].Count != 200 {
		t.Fatalf("stage count = %d, want 200", snap.Stages[0].Count)
	}
}

// TestContextRoundTrip: WithTrace/FromContext/StartSpan compose.
func TestContextRoundTrip(t *testing.T) {
	tr := NewTrace("ctx")
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost in context")
	}
	sp := StartSpan(ctx, "work")
	sp.End()
	if n := len(tr.Snapshot().Spans); n != 1 {
		t.Fatalf("spans = %d, want 1", n)
	}
}

// TestTraceRing: bounded retention, ID lookup, newest-first Recent.
func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	var ids []string
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("t%d", i)
		ids = append(ids, id)
		r.Put(NewTrace(id))
	}
	if r.Get("t0") != nil || r.Get("t1") != nil {
		t.Fatal("evicted traces must not resolve")
	}
	for _, id := range ids[2:] {
		if r.Get(id) == nil {
			t.Fatalf("trace %s missing", id)
		}
	}
	recent := r.Recent(10)
	if len(recent) != 3 {
		t.Fatalf("Recent = %d traces, want 3", len(recent))
	}
	if recent[0].ID() != "t4" || recent[2].ID() != "t2" {
		t.Fatalf("Recent order: %s, %s, %s", recent[0].ID(), recent[1].ID(), recent[2].ID())
	}
}

// TestNewTraceID: IDs are 16 hex chars and do not trivially collide.
func TestNewTraceID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("ID %q not 16 chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate ID %q", id)
		}
		seen[id] = true
	}
}
