package data

import (
	"math"
	"testing"
)

func TestGenerateShapesAndLabels(t *testing.T) {
	cfg := Tiny()
	train, val := Generate(cfg)
	if train.Len() != cfg.Train || val.Len() != cfg.Val {
		t.Fatalf("sizes %d/%d want %d/%d", train.Len(), val.Len(), cfg.Train, cfg.Val)
	}
	wantShape := []int{cfg.Train, cfg.Channels, cfg.Size, cfg.Size}
	for i, s := range wantShape {
		if train.X.Shape[i] != s {
			t.Fatalf("train shape %v want %v", train.X.Shape, wantShape)
		}
	}
	for _, y := range train.Y {
		if y < 0 || y >= cfg.Classes {
			t.Fatalf("label %d out of range", y)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Tiny()
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("same seed should generate identical data")
		}
	}
	cfg.Seed++
	c, _ := Generate(cfg)
	same := true
	for i := range a.X.Data {
		if a.X.Data[i] != c.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should generate different data")
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// A nearest-class-mean classifier on raw pixels should beat chance
	// substantially on the tiny task — the generator must carry signal.
	cfg := Tiny()
	train, val := Generate(cfg)
	d := cfg.Channels * cfg.Size * cfg.Size
	means := make([][]float64, cfg.Classes)
	counts := make([]int, cfg.Classes)
	for i := range means {
		means[i] = make([]float64, d)
	}
	for i := 0; i < train.Len(); i++ {
		y := train.Y[i]
		counts[y]++
		for j := 0; j < d; j++ {
			means[y][j] += train.X.Data[i*d+j]
		}
	}
	for c := range means {
		if counts[c] == 0 {
			t.Fatalf("class %d has no samples", c)
		}
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for i := 0; i < val.Len(); i++ {
		best, bestDist := -1, math.Inf(1)
		for c := range means {
			var dist float64
			for j := 0; j < d; j++ {
				diff := val.X.Data[i*d+j] - means[c][j]
				dist += diff * diff
			}
			if dist < bestDist {
				best, bestDist = c, dist
			}
		}
		if best == val.Y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(val.Len())
	chance := 1.0 / float64(cfg.Classes)
	if acc < 2*chance {
		t.Fatalf("nearest-mean accuracy %.3f barely above chance %.3f — generator carries no signal", acc, chance)
	}
}

// TestNoiseKnobControlsDifficulty: raising NoiseStd must reduce the
// accuracy of a nearest-class-mean probe — the generator's difficulty knob
// has to actually work. (The SharedWeight knob is invisible to linear
// probes by design: it adds the same texture to every class, so it only
// hurts feature-learning models; see §5.4.4.)
func TestNoiseKnobControlsDifficulty(t *testing.T) {
	score := func(noise float64) float64 {
		cfg := Tiny()
		cfg.Classes = 8
		cfg.Train, cfg.Val = 320, 200
		cfg.NoiseStd = noise
		train, val := Generate(cfg)
		d := cfg.Channels * cfg.Size * cfg.Size
		means := make([][]float64, cfg.Classes)
		counts := make([]int, cfg.Classes)
		for i := range means {
			means[i] = make([]float64, d)
		}
		for i := 0; i < train.Len(); i++ {
			y := train.Y[i]
			counts[y]++
			for j := 0; j < d; j++ {
				means[y][j] += train.X.Data[i*d+j]
			}
		}
		for c := range means {
			if counts[c] > 0 {
				for j := range means[c] {
					means[c][j] /= float64(counts[c])
				}
			}
		}
		correct := 0
		for i := 0; i < val.Len(); i++ {
			best, bestDist := -1, math.Inf(1)
			for c := range means {
				var dist float64
				for j := 0; j < d; j++ {
					diff := val.X.Data[i*d+j] - means[c][j]
					dist += diff * diff
				}
				if dist < bestDist {
					best, bestDist = c, dist
				}
			}
			if best == val.Y[i] {
				correct++
			}
		}
		return float64(correct) / float64(val.Len())
	}
	clean := score(0.1)
	noisy := score(2.5)
	if noisy >= clean {
		t.Fatalf("noise knob ineffective: acc %.3f at σ=0.1 vs %.3f at σ=2.5", clean, noisy)
	}
}

func TestBatches(t *testing.T) {
	cfg := Tiny()
	cfg.Train = 50
	train, _ := Generate(cfg)
	batches := train.Batches(16, nil)
	if len(batches) != 4 {
		t.Fatalf("%d batches for 50 samples at 16", len(batches))
	}
	total := 0
	for _, b := range batches {
		if b.X.Shape[0] != len(b.Y) {
			t.Fatal("batch X/Y size mismatch")
		}
		total += len(b.Y)
	}
	if total != 50 {
		t.Fatalf("batches cover %d samples, want 50", total)
	}
	// Last batch is the remainder.
	if batches[3].X.Shape[0] != 2 {
		t.Fatalf("last batch has %d samples, want 2", batches[3].X.Shape[0])
	}
}

func TestBatchesWithPermutation(t *testing.T) {
	cfg := Tiny()
	cfg.Train = 20
	train, _ := Generate(cfg)
	perm := train.Shuffle(9)
	if len(perm) != 20 {
		t.Fatalf("perm length %d", len(perm))
	}
	batches := train.Batches(20, perm)
	for i, src := range perm {
		if batches[0].Y[i] != train.Y[src] {
			t.Fatal("permutation not honoured")
		}
	}
}

func TestSample(t *testing.T) {
	cfg := Tiny()
	train, _ := Generate(cfg)
	x, y := train.Sample(3)
	if x.Shape[0] != 1 || x.Shape[1] != cfg.Channels {
		t.Fatalf("sample shape %v", x.Shape)
	}
	if y != train.Y[3] {
		t.Fatal("wrong label")
	}
	// Mutating the sample must not affect the dataset.
	x.Data[0] += 100
	if train.X.Data[3*cfg.Channels*cfg.Size*cfg.Size] == x.Data[0] {
		t.Fatal("sample shares storage with dataset")
	}
}
