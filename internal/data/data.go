// Package data generates the synthetic image-classification datasets that
// substitute for CIFAR-10 and ImageNet-1k in this offline reproduction (see
// DESIGN.md §2). Each class is a random smooth "prototype" texture built
// from sinusoidal components; samples add per-sample phase jitter, a global
// texture shared by all classes, and Gaussian pixel noise. The knobs control
// task difficulty: more classes, stronger shared texture and noise make
// approximation errors in the network more damaging — reproducing the
// CIFAR-vs-ImageNet contrast of the paper's §5.4.4.
package data

import (
	"math"
	"math/rand"

	"github.com/efficientfhe/smartpaf/internal/tensor"
)

// Config controls the synthetic generator.
type Config struct {
	Classes  int
	Channels int
	Size     int // images are Size×Size
	Train    int // number of training samples
	Val      int // number of validation samples

	// Difficulty knobs.
	Components   int     // sinusoidal components per prototype
	NoiseStd     float64 // per-pixel Gaussian noise
	SharedWeight float64 // weight of the class-independent global texture
	JitterStd    float64 // per-sample phase jitter
	Seed         int64
}

// CIFARLike returns a 10-class easy task (stands in for CIFAR-10).
func CIFARLike() Config {
	return Config{
		Classes: 10, Channels: 3, Size: 16, Train: 2000, Val: 500,
		Components: 6, NoiseStd: 0.15, SharedWeight: 0.3, JitterStd: 0.12,
		Seed: 1,
	}
}

// ImageNetLike returns a 20-class hard task (stands in for ImageNet-1k):
// more classes, heavier shared texture and noise.
func ImageNetLike() Config {
	return Config{
		Classes: 20, Channels: 3, Size: 16, Train: 3000, Val: 600,
		Components: 8, NoiseStd: 0.2, SharedWeight: 0.6, JitterStd: 0.15,
		Seed: 2,
	}
}

// Tiny returns a minimal configuration for unit tests.
func Tiny() Config {
	return Config{
		Classes: 4, Channels: 1, Size: 8, Train: 160, Val: 80,
		Components: 4, NoiseStd: 0.2, SharedWeight: 0.2, JitterStd: 0.1,
		Seed: 3,
	}
}

// Dataset holds generated samples in NCHW layout.
type Dataset struct {
	X       *tensor.Tensor // [N, C, H, W]
	Y       []int
	Classes int
	cfg     Config
}

// component is one sinusoid of a prototype texture.
type component struct {
	fx, fy, phase, amp float64
}

// Generate builds train and validation splits with disjoint sample draws
// from the same class prototypes.
func Generate(cfg Config) (train, val *Dataset) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Class prototypes: per class, per channel, a set of components.
	protos := make([][][]component, cfg.Classes)
	for c := range protos {
		protos[c] = make([][]component, cfg.Channels)
		for ch := range protos[c] {
			comps := make([]component, cfg.Components)
			for i := range comps {
				comps[i] = component{
					fx:    float64(rng.Intn(4) + 1),
					fy:    float64(rng.Intn(4) + 1),
					phase: rng.Float64() * 2 * math.Pi,
					amp:   0.5 + rng.Float64(),
				}
			}
			protos[c][ch] = comps
		}
	}
	// One global texture shared by every class (classes differ only in their
	// prototype on top of it — the "fine distinction" difficulty knob).
	shared := make([][]component, cfg.Channels)
	for ch := range shared {
		comps := make([]component, cfg.Components)
		for i := range comps {
			comps[i] = component{
				fx:    float64(rng.Intn(5) + 1),
				fy:    float64(rng.Intn(5) + 1),
				phase: rng.Float64() * 2 * math.Pi,
				amp:   0.5 + rng.Float64(),
			}
		}
		shared[ch] = comps
	}

	gen := func(n int) *Dataset {
		ds := &Dataset{
			X:       tensor.New(n, cfg.Channels, cfg.Size, cfg.Size),
			Y:       make([]int, n),
			Classes: cfg.Classes,
			cfg:     cfg,
		}
		for i := 0; i < n; i++ {
			cls := rng.Intn(cfg.Classes)
			ds.Y[i] = cls
			for ch := 0; ch < cfg.Channels; ch++ {
				base := (i*cfg.Channels + ch) * cfg.Size * cfg.Size
				jitter := rng.NormFloat64() * cfg.JitterStd
				for y := 0; y < cfg.Size; y++ {
					for x := 0; x < cfg.Size; x++ {
						u := float64(x) / float64(cfg.Size)
						v := float64(y) / float64(cfg.Size)
						var val float64
						for _, cp := range protos[cls][ch] {
							val += cp.amp * math.Sin(2*math.Pi*(cp.fx*u+cp.fy*v)+cp.phase+jitter)
						}
						val /= float64(cfg.Components)
						var sh float64
						for _, cp := range shared[ch] {
							sh += cp.amp * math.Sin(2*math.Pi*(cp.fx*u+cp.fy*v)+cp.phase)
						}
						sh /= float64(cfg.Components)
						val = (val + cfg.SharedWeight*sh) / (1 + cfg.SharedWeight)
						val += rng.NormFloat64() * cfg.NoiseStd
						ds.X.Data[base+y*cfg.Size+x] = val
					}
				}
			}
		}
		return ds
	}
	return gen(cfg.Train), gen(cfg.Val)
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// Sample returns sample i as a [1,C,H,W] view-free copy and its label.
func (d *Dataset) Sample(i int) (*tensor.Tensor, int) {
	c, h, w := d.X.Shape[1], d.X.Shape[2], d.X.Shape[3]
	out := tensor.New(1, c, h, w)
	copy(out.Data, d.X.Data[i*c*h*w:(i+1)*c*h*w])
	return out, d.Y[i]
}

// Batch is one minibatch.
type Batch struct {
	X *tensor.Tensor
	Y []int
}

// Batches splits the dataset into minibatches of at most batchSize, in the
// order given by perm (identity if nil).
func (d *Dataset) Batches(batchSize int, perm []int) []Batch {
	n := d.Len()
	if perm == nil {
		perm = make([]int, n)
		for i := range perm {
			perm[i] = i
		}
	}
	c, h, w := d.X.Shape[1], d.X.Shape[2], d.X.Shape[3]
	stride := c * h * w
	var out []Batch
	for start := 0; start < n; start += batchSize {
		end := min(start+batchSize, n)
		bs := end - start
		bx := tensor.New(bs, c, h, w)
		by := make([]int, bs)
		for i := 0; i < bs; i++ {
			src := perm[start+i]
			copy(bx.Data[i*stride:(i+1)*stride], d.X.Data[src*stride:(src+1)*stride])
			by[i] = d.Y[src]
		}
		out = append(out, Batch{X: bx, Y: by})
	}
	return out
}

// Shuffle returns a permutation of the dataset indices from the given seed.
func (d *Dataset) Shuffle(seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(d.Len())
	return perm
}
