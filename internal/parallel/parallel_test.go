package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-1)=%d want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	for in, want := range map[int]int{0: 1, 1: 1, 2: 2, 7: 7} {
		if got := Workers(in); got != want {
			t.Fatalf("Workers(%d)=%d want %d", in, got, want)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 23
		counts := make([]atomic.Int32, n)
		if err := For(n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForReturnsFirstErrorAndStopsScheduling(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := For(1000, 4, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v want %v", err, boom)
	}
	// After the failure no further indices are scheduled; with 4 workers
	// only a handful of in-flight items can complete.
	if ran.Load() == 1000 {
		t.Fatal("error did not stop scheduling: all 1000 items ran")
	}

	// Serial path stops immediately after the failing index.
	ran.Store(0)
	err = For(1000, 1, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || ran.Load() != 4 {
		t.Fatalf("serial: err=%v ran=%d, want boom after 4 calls", err, ran.Load())
	}
}

func TestForZeroItems(t *testing.T) {
	if err := For(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}
