package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsEverything checks that every accepted task executes exactly
// once across many producers.
func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(4, 0)
	const producers, perProducer = 8, 50
	var ran atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if !p.Submit(func() { ran.Add(1) }) {
					t.Error("submit refused before Close")
					return
				}
			}
		}()
	}
	wg.Wait()
	p.Close()
	if got := ran.Load(); got != producers*perProducer {
		t.Fatalf("ran %d tasks, want %d", got, producers*perProducer)
	}
}

// TestPoolBoundsParallelism is the budget property: no matter how many
// producers push, concurrently running tasks never exceed the worker count.
func TestPoolBoundsParallelism(t *testing.T) {
	const budget = 3
	p := NewPool(budget, 0)
	var inFlight, maxSeen atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				p.Submit(func() {
					n := inFlight.Add(1)
					for {
						old := maxSeen.Load()
						if n <= old || maxSeen.CompareAndSwap(old, n) {
							break
						}
					}
					time.Sleep(200 * time.Microsecond)
					inFlight.Add(-1)
				})
			}
		}()
	}
	wg.Wait()
	p.Close()
	if got := maxSeen.Load(); got > budget {
		t.Fatalf("observed %d concurrent tasks, budget is %d", got, budget)
	}
	if got := p.Peak(); got > budget {
		t.Fatalf("pool reports peak %d, budget is %d", got, budget)
	}
	if p.Peak() < 1 {
		t.Fatal("peak never recorded a running task")
	}
}

// TestPoolCloseSemantics: Close waits for accepted tasks, and Submit
// reports false afterwards.
func TestPoolCloseSemantics(t *testing.T) {
	p := NewPool(2, 4)
	var ran atomic.Int64
	for i := 0; i < 10; i++ {
		if !p.Submit(func() {
			time.Sleep(time.Millisecond)
			ran.Add(1)
		}) {
			t.Fatal("submit refused before Close")
		}
	}
	p.Close()
	if got := ran.Load(); got != 10 {
		t.Fatalf("Close returned with %d/10 tasks run", got)
	}
	if p.Submit(func() { t.Error("task ran after Close") }) {
		t.Fatal("submit accepted after Close")
	}
	if p.Running() != 0 {
		t.Fatalf("running %d after Close", p.Running())
	}
	p.Close() // idempotent
}

// TestPoolWorkerResolution: the knob follows the repo-wide convention.
func TestPoolWorkerResolution(t *testing.T) {
	for _, tc := range []struct{ in, min int }{{0, 1}, {1, 1}, {5, 5}} {
		p := NewPool(tc.in, 0)
		if p.Workers() != tc.min {
			t.Errorf("NewPool(%d) resolved to %d workers, want %d", tc.in, p.Workers(), tc.min)
		}
		p.Close()
	}
	p := NewPool(-1, 0)
	if p.Workers() < 1 {
		t.Errorf("NewPool(-1) resolved to %d workers", p.Workers())
	}
	p.Close()
}

// TestPoolSubmitDuringClose races producers against Close: every Submit
// must either run its task or report false — no accepted task may vanish.
func TestPoolSubmitDuringClose(t *testing.T) {
	for round := 0; round < 20; round++ {
		p := NewPool(2, 1)
		var accepted, ran atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					if p.Submit(func() { ran.Add(1) }) {
						accepted.Add(1)
					}
				}
			}()
		}
		p.Close()
		wg.Wait()
		if accepted.Load() != ran.Load() {
			t.Fatalf("round %d: accepted %d, ran %d", round, accepted.Load(), ran.Load())
		}
	}
}
