// Package parallel provides the small index-fan worker loop shared by the
// batch-parallel stages above the ring substrate (henn batch inference,
// smartpaf per-slot CT, the experiments latency harness). The ring package
// keeps its own fan-out (ForEachLimb) because it has substrate-specific
// threshold and nesting rules; everything else uses this.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a user-facing worker knob: n < 0 means all cores
// (runtime.GOMAXPROCS(0)), 0 and 1 mean serial, anything else is taken
// as-is.
func Workers(n int) int {
	if n < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if n == 0 {
		return 1
	}
	return n
}

// For runs f(i) for every i in [0, n) across up to workers goroutines and
// returns the first error. After an error no further indices are scheduled
// (in-flight calls finish). workers ≤ 1 runs serially on the caller's
// goroutine, stopping at the first error.
func For(n, workers int, f func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := f(i); err != nil {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
