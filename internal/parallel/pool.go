package parallel

import (
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a fixed budget of worker goroutines executing submitted tasks in
// submission order. It is the shared-budget primitive behind the serving
// scheduler: any number of producers submit independent work units, and
// total parallelism stays bounded by the pool size no matter how many
// producers are active. Contrast For, which fans one caller's index range
// out and returns; a Pool is long-lived and shared.
type Pool struct {
	tasks   chan func()
	workers int
	wg      sync.WaitGroup
	closed  chan struct{}

	mu   sync.RWMutex
	down bool //hennlint:guarded-by(mu)

	running atomic.Int64
	peak    atomic.Int64
	obs     atomic.Pointer[TaskObserver]
}

// TaskObserver receives, for every task the pool executes, how long the
// task waited between submission and a worker picking it up (with a
// zero-depth buffer this is exactly the rendezvous wait against the worker
// budget) and how long it ran. Observers must be fast and must not submit
// to the pool.
type TaskObserver func(wait, run time.Duration)

// SetTaskObserver installs fn as the pool's task observer; nil uninstalls.
// Only tasks submitted after the call are observed.
func (p *Pool) SetTaskObserver(fn TaskObserver) {
	if fn == nil {
		p.obs.Store(nil)
		return
	}
	p.obs.Store(&fn)
}

// NewPool starts a pool with the given worker budget, resolved through
// Workers (negative means all cores, 0 and 1 mean a single worker). queue
// is the depth of the submission buffer; 0 makes Submit rendezvous with a
// free worker, which gives producers exact backpressure against the budget.
func NewPool(workers, queue int) *Pool {
	p := &Pool{
		tasks:   make(chan func(), max(queue, 0)),
		workers: Workers(workers),
		closed:  make(chan struct{}),
	}
	p.wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		go p.work()
	}
	return p
}

func (p *Pool) work() {
	defer p.wg.Done()
	for {
		select {
		case task := <-p.tasks:
			p.run(task)
		case <-p.closed:
			// Keep consuming what was accepted before shutdown; Close
			// sweeps anything that lands in the buffer after the workers
			// saw it empty. The tasks channel is never closed (producers
			// may still be parked inside Submit's send).
			for {
				select {
				case task := <-p.tasks:
					p.run(task)
				default:
					return
				}
			}
		}
	}
}

func (p *Pool) run(task func()) {
	n := p.running.Add(1)
	for {
		old := p.peak.Load()
		if n <= old || p.peak.CompareAndSwap(old, n) {
			break
		}
	}
	task()
	p.running.Add(-1)
}

// Submit hands a task to the pool, blocking while the submission buffer is
// full. It reports false — and has not enqueued the task — once the pool is
// closed; a true return guarantees the task runs before Close returns.
func (p *Pool) Submit(task func()) bool {
	if obs := p.obs.Load(); obs != nil {
		inner := task
		submitted := time.Now()
		task = func() {
			start := time.Now()
			inner()
			(*obs)(start.Sub(submitted), time.Since(start))
		}
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.down {
		return false
	}
	// The read lock spans the (possibly blocking) send, so Close cannot
	// finish its handoff while an accepted task is still in flight.
	select {
	case p.tasks <- task:
		return true
	case <-p.closed:
		return false
	}
}

// Close stops intake and waits for every accepted task to finish, running
// stragglers that raced the workers' exit on the caller's goroutine.
// Subsequent Submit calls report false; Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	already := p.down
	p.down = true
	p.mu.Unlock()
	if !already {
		close(p.closed)
	}
	p.wg.Wait()
	for {
		select {
		case task := <-p.tasks:
			p.run(task)
		default:
			return
		}
	}
}

// Workers returns the resolved worker budget.
func (p *Pool) Workers() int { return p.workers }

// Running returns how many tasks are executing right now.
func (p *Pool) Running() int { return int(p.running.Load()) }

// Peak returns the high-water mark of concurrently executing tasks — the
// observable proof that a shared budget bounded parallelism.
func (p *Pool) Peak() int { return int(p.peak.Load()) }
